package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ispy/internal/experiments"
)

// runCLI invokes realMain the way main does, capturing both streams.
func runCLI(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = realMain(argv, &out, &errw)
	return code, out.String(), errw.String()
}

// TestExitCodeContract pins the documented exit codes: 0 clean, 1 partial,
// 2 usage — with every path flowing through the single epilogue.
func TestExitCodeContract(t *testing.T) {
	t.Run("no args is usage", func(t *testing.T) {
		if code, _, stderr := runCLI(t); code != exitUsage || !strings.Contains(stderr, "usage") {
			t.Errorf("code = %d, stderr = %q", code, stderr)
		}
	})
	t.Run("unknown command is usage", func(t *testing.T) {
		if code, _, _ := runCLI(t, "frobnicate"); code != exitUsage {
			t.Errorf("code = %d", code)
		}
	})
	t.Run("unknown experiment is usage", func(t *testing.T) {
		code, _, stderr := runCLI(t, "run", "fig99")
		if code != exitUsage || !strings.Contains(stderr, "fig99") {
			t.Errorf("code = %d, stderr = %q", code, stderr)
		}
	})
	t.Run("bad fault spec is usage", func(t *testing.T) {
		if code, _, _ := runCLI(t, "-faults", "site=nonsense", "list"); code != exitUsage {
			t.Errorf("code = %d", code)
		}
	})
	t.Run("bad apps is usage", func(t *testing.T) {
		if code, _, _ := runCLI(t, "-apps", ",", "list"); code != exitUsage {
			t.Errorf("code = %d", code)
		}
	})
	t.Run("list is clean", func(t *testing.T) {
		code, stdout, _ := runCLI(t, "list")
		if code != exitOK || !strings.Contains(stdout, "fig11") {
			t.Errorf("code = %d, stdout = %q", code, stdout)
		}
	})
	t.Run("clean run exits 0", func(t *testing.T) {
		code, stdout, stderr := runCLI(t, "-apps", "tomcat", "-instrs", "120000", "run", "fig1")
		if code != exitOK {
			t.Errorf("code = %d, stderr = %q", code, stderr)
		}
		if !strings.Contains(stdout, "completed in") {
			t.Errorf("no completion line: %q", stdout)
		}
		if strings.Contains(stderr, "FAILED") {
			t.Errorf("clean run reported failures: %q", stderr)
		}
	})
}

// TestScenarioCLI covers the scenario command at the process boundary:
// usage errors exit 2 naming the offending tenant, and a recorded trace
// replays to byte-identical output.
func TestScenarioCLI(t *testing.T) {
	t.Run("no operand is usage", func(t *testing.T) {
		if code, _, stderr := runCLI(t, "scenario"); code != exitUsage || !strings.Contains(stderr, "spec") {
			t.Errorf("code = %d, stderr = %q", code, stderr)
		}
	})
	t.Run("malformed spec is usage", func(t *testing.T) {
		if code, _, _ := runCLI(t, "scenario", "arrival=bogus;tenants=tomcat"); code != exitUsage {
			t.Errorf("code = %d", code)
		}
	})
	t.Run("unknown tenant app is usage and names the tenant", func(t *testing.T) {
		code, _, stderr := runCLI(t, "scenario", "tenants=wordpress,httpd")
		if code != exitUsage {
			t.Fatalf("code = %d, want %d", code, exitUsage)
		}
		if !strings.Contains(stderr, "tenant 1") || !strings.Contains(stderr, `"httpd"`) {
			t.Errorf("error does not name the offending tenant: %q", stderr)
		}
		if !strings.Contains(stderr, "wordpress") {
			t.Errorf("error does not list valid presets: %q", stderr)
		}
	})
	t.Run("garbage trace file is usage", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "junk.ispy")
		if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
			t.Fatal(err)
		}
		if code, _, stderr := runCLI(t, "scenario", path); code != exitUsage || !strings.Contains(stderr, path) {
			t.Errorf("code = %d, stderr = %q", code, stderr)
		}
	})
	t.Run("record then replay is byte-identical", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "trace.ispy")
		spec := "name=rr;seed=7;requests=96;arrival=gamma:0.7;day=0.7,1.3;tenants=kafka,drupal"
		// The bare -scenario flag (no subcommand operand) must also work.
		code, direct, stderr := runCLI(t,
			"-instrs", "120000", "-scenario", spec, "-scenario-record", path)
		if code != exitOK {
			t.Fatalf("record run: code = %d, stderr = %q", code, stderr)
		}
		if !strings.Contains(direct, "scenario \"rr\"") || !strings.Contains(direct, "slo:std") {
			t.Fatalf("unexpected report:\n%s", direct)
		}
		code, replay, stderr := runCLI(t, "-instrs", "120000", "scenario", path)
		if code != exitOK {
			t.Fatalf("replay run: code = %d, stderr = %q", code, stderr)
		}
		if direct != replay {
			t.Errorf("replay output diverged from the recorded run:\n--- direct:\n%s--- replay:\n%s", direct, replay)
		}
	})
	t.Run("scenario fault exits partial", func(t *testing.T) {
		code, _, stderr := runCLI(t,
			"-instrs", "120000", "-faults", "compute/scenario-base/*=error",
			"-scenario", "seed=3;requests=64;tenants=tomcat")
		if code != exitPartial {
			t.Fatalf("code = %d, want %d\nstderr: %s", code, exitPartial, stderr)
		}
		if !strings.Contains(stderr, "FAILED") {
			t.Errorf("run report does not record the failure: %q", stderr)
		}
	})
}

// TestInjectedPanicExitsPartial: a fault that kills one app's computation
// must not kill the process — results for survivors print, the run report
// names the casualty, and the exit code is 1.
func TestInjectedPanicExitsPartial(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-apps", "wordpress,tomcat", "-instrs", "120000",
		"-faults", "compute/base/tomcat=panic", "run", "fig1")
	if code != exitPartial {
		t.Fatalf("code = %d, want %d\nstderr: %s", code, exitPartial, stderr)
	}
	if !strings.Contains(stdout, "SKIPPED") {
		t.Errorf("failed app not annotated in output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "wordpress") {
		t.Errorf("surviving app missing from output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "FAILED") || !strings.Contains(stderr, "tomcat") {
		t.Errorf("run report does not name the failed app:\n%s", stderr)
	}
}

// TestTimeoutExitsPartial: an expired -timeout cancels the run; the process
// still completes the epilogue (report on stderr) and exits 1.
func TestTimeoutExitsPartial(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-apps", "tomcat", "-instrs", "120000", "-timeout", "1ns", "run", "fig1")
	if code != exitPartial {
		t.Fatalf("code = %d, want %d\nstderr: %s", code, exitPartial, stderr)
	}
	if !strings.Contains(stderr, "run exceeded -timeout") {
		t.Errorf("report does not carry the timeout cause:\n%s", stderr)
	}
	if !strings.Contains(stderr, "SKIPPED") {
		t.Errorf("report does not record skipped work:\n%s", stderr)
	}
}

// TestTimeoutSweepStillPrintsSettings: a cancelled sweep must render every
// setting line (as n/a) rather than truncating the table.
func TestTimeoutSweepStillPrintsSettings(t *testing.T) {
	code, stdout, _ := runCLI(t,
		"-apps", "tomcat", "-instrs", "120000", "-timeout", "1ns", "sweep", "preds")
	if code != exitPartial {
		t.Fatalf("code = %d, want %d", code, exitPartial)
	}
	for _, label := range []string{"preds=1", "preds=32"} {
		if !strings.Contains(stdout, label) {
			t.Errorf("sweep output missing %s:\n%s", label, stdout)
		}
	}
	if !strings.Contains(stdout, "n/a") {
		t.Errorf("cancelled sweep rows not marked n/a:\n%s", stdout)
	}
}

// TestVerboseFlushesTelemetryOnPartialRun: -v telemetry must survive even a
// run that failed half-way (the single-exit-path guarantee).
func TestVerboseFlushesTelemetryOnPartialRun(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-apps", "tomcat", "-instrs", "120000", "-v",
		"-faults", "compute/*=panic", "run", "fig1")
	if code != exitPartial {
		t.Fatalf("code = %d, want %d", code, exitPartial)
	}
	if !strings.Contains(stderr, "artifact") {
		t.Errorf("telemetry summary missing from stderr:\n%s", stderr)
	}
}

// Regression: -instrs used to rescale only the measured budgets, leaving the
// fixed 300k/200k warmups to swallow (or exceed) short runs.
func TestInstrsRescalesWarmups(t *testing.T) {
	cfg := experiments.DefaultConfig().WithMeasureInstrs(150_000)
	if cfg.MeasureInstrs != 150_000 {
		t.Fatalf("MeasureInstrs = %d", cfg.MeasureInstrs)
	}
	if cfg.WarmupInstrs >= cfg.MeasureInstrs {
		t.Errorf("warmup %d not rescaled below measure %d", cfg.WarmupInstrs, cfg.MeasureInstrs)
	}
	if cfg.SweepWarmup >= cfg.SweepInstrs {
		t.Errorf("sweep warmup %d not rescaled below sweep budget %d", cfg.SweepWarmup, cfg.SweepInstrs)
	}
	// The configuration's proportions survive the rescale.
	d := experiments.DefaultConfig()
	wantWarmup := uint64(float64(d.WarmupInstrs) * 150_000 / float64(d.MeasureInstrs))
	if cfg.WarmupInstrs != wantWarmup {
		t.Errorf("WarmupInstrs = %d, want %d", cfg.WarmupInstrs, wantWarmup)
	}
	// A zero target is a no-op.
	if got := d.WithMeasureInstrs(0); got.MeasureInstrs != d.MeasureInstrs || got.WarmupInstrs != d.WarmupInstrs {
		t.Error("WithMeasureInstrs(0) changed the config")
	}
}

// Regression: a warmup at or above the measured budget must be rejected, not
// silently produce zero-length measurements.
func TestValidateRejectsWarmupAboveMeasure(t *testing.T) {
	lab := experiments.NewLab(experiments.Config{
		Apps:          []string{"tomcat"},
		MeasureInstrs: 100_000,
		WarmupInstrs:  100_000,
	})
	if err := lab.Validate(); err == nil || !strings.Contains(err.Error(), "warmup") {
		t.Errorf("warmup ≥ measure accepted (err=%v)", err)
	}
	lab = experiments.NewLab(experiments.Config{
		Apps:        []string{"tomcat"},
		SweepInstrs: 50_000,
		SweepWarmup: 60_000,
	})
	if err := lab.Validate(); err == nil || !strings.Contains(err.Error(), "sweep warmup") {
		t.Errorf("sweep warmup ≥ sweep budget accepted (err=%v)", err)
	}
}

// Regression: -apps "a, b," used to pass the raw split (with spaces and an
// empty trailing entry) straight to the lab.
func TestParseApps(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"tomcat", []string{"tomcat"}},
		{"tomcat,kafka", []string{"tomcat", "kafka"}},
		{" tomcat , kafka ", []string{"tomcat", "kafka"}},
		{"tomcat,,kafka,", []string{"tomcat", "kafka"}},
		{",", nil},
		{"  ", nil},
	}
	for _, c := range cases {
		if got := parseApps(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseApps(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// The unknown-app error must name the valid applications.
func TestUnknownAppErrorNamesValidApps(t *testing.T) {
	lab := experiments.NewLab(experiments.Config{Apps: []string{"nope"}})
	err := lab.Validate()
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	if !strings.Contains(err.Error(), "wordpress") || !strings.Contains(err.Error(), "tomcat") {
		t.Errorf("error does not list valid apps: %v", err)
	}
}
