// ispy-profile separates the two halves of I-SPY's usage model (Fig. 9)
// the way a production deployment would: profile collection runs where the
// workload runs and writes a compact profile file; the offline analysis
// consumes that file at build time and emits the injected binary.
//
// Usage:
//
//	ispy-profile collect -app wordpress -o wp.profile
//	    run the workload under the profiling simulator and save the
//	    miss-annotated dynamic CFG
//
//	ispy-profile build -profile wp.profile -o wp.ispy [-asmdb]
//	    run the offline analysis against a saved profile and save the
//	    injected program
//
//	ispy-profile eval -app wordpress -prog wp.ispy
//	    simulate a saved injected program and report speedup vs baseline
//
//	ispy-profile info -profile wp.profile | -prog wp.ispy
//	    describe a saved artifact
package main

import (
	"flag"
	"fmt"
	"os"

	"ispy/internal/asmdb"
	"ispy/internal/core"
	"ispy/internal/isa"
	"ispy/internal/metrics"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/traceio"
	"ispy/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "collect":
		err = collect(os.Args[2:])
	case "build":
		err = build(os.Args[2:])
	case "eval":
		err = eval(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ispy-profile:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ispy-profile collect -app <name> -o <file> [-instrs N]
  ispy-profile build   -profile <file> -o <file> [-asmdb]
  ispy-profile eval    -app <name> -prog <file> [-instrs N]
  ispy-profile info    -profile <file> | -prog <file>`)
}

func simCfgFor(w *workload.Workload, instrs uint64) sim.Config {
	c := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)
	if instrs > 0 {
		c.MaxInstrs = instrs
	}
	return c
}

func collect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	app := fs.String("app", "wordpress", "application preset")
	out := fs.String("o", "", "output profile file")
	instrs := fs.Uint64("instrs", 0, "measured instructions (0 = default)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("collect: -o is required")
	}
	w := workload.Preset(*app)
	in := workload.DefaultInput(w)
	prof := profile.Collect(w, in, simCfgFor(w, *instrs))
	pd := &traceio.ProfileData{
		WorkloadName:   w.Name,
		WorkloadSeed:   w.Params.Seed,
		InputName:      in.Name,
		InputSeed:      in.Seed,
		TotalMisses:    prof.Graph.TotalMisses,
		AvgHashDensity: prof.AvgHashDensity,
		BaseCycles:     prof.Stats.Cycles,
		BaseInstrs:     prof.Stats.BaseInstrs,
		Graph:          prof.Graph,
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := traceio.WriteProfile(f, pd); err != nil {
		return err
	}
	fmt.Printf("profiled %s: %d misses over %d lines → %s\n",
		w.Name, prof.Graph.TotalMisses, len(prof.Graph.Sites), *out)
	return nil
}

// loadProfile reconstructs a live profile from a saved one by regenerating
// the (deterministic) workload it names.
func loadProfile(path string) (*profile.Profile, *traceio.ProfileData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	pd, err := traceio.ReadProfile(f)
	if err != nil {
		return nil, nil, err
	}
	w := workload.Preset(pd.WorkloadName)
	if w.Params.Seed != pd.WorkloadSeed {
		return nil, nil, fmt.Errorf("profile was collected on %s with seed %#x; preset now uses %#x",
			pd.WorkloadName, pd.WorkloadSeed, w.Params.Seed)
	}
	prof := &profile.Profile{
		Graph:          pd.Graph,
		AvgHashDensity: pd.AvgHashDensity,
		Stats:          &sim.Stats{Cycles: pd.BaseCycles, BaseInstrs: pd.BaseInstrs, L1IMisses: pd.TotalMisses},
		Workload:       w,
		Input:          workload.Input{Name: pd.InputName, Seed: pd.InputSeed},
	}
	return prof, pd, nil
}

func build(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	profPath := fs.String("profile", "", "input profile file")
	out := fs.String("o", "", "output program file")
	useAsmdb := fs.Bool("asmdb", false, "run the AsmDB baseline analysis instead of I-SPY")
	fs.Parse(args)
	if *profPath == "" || *out == "" {
		return fmt.Errorf("build: -profile and -o are required")
	}
	prof, _, err := loadProfile(*profPath)
	if err != nil {
		return err
	}
	scfg := simCfgFor(prof.Workload, 0)
	var b *core.Build
	if *useAsmdb {
		b = asmdb.BuildDefault(prof, core.DefaultOptions())
	} else {
		b = core.BuildISPY(prof, scfg, core.DefaultOptions())
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := traceio.WriteProgram(f, b.Prog); err != nil {
		return err
	}
	_, n := b.Prog.PrefetchBytes()
	fmt.Printf("injected %d prefetch instructions (+%.1f%% static) → %s\n",
		n, b.StaticIncrease(prof.Workload.Prog)*100, *out)
	return nil
}

func eval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	app := fs.String("app", "", "application preset the program was built for")
	progPath := fs.String("prog", "", "saved injected program")
	instrs := fs.Uint64("instrs", 0, "measured instructions (0 = default)")
	fs.Parse(args)
	if *app == "" || *progPath == "" {
		return fmt.Errorf("eval: -app and -prog are required")
	}
	w := workload.Preset(*app)
	f, err := os.Open(*progPath)
	if err != nil {
		return err
	}
	defer f.Close()
	prog, err := traceio.ReadProgram(f)
	if err != nil {
		return err
	}
	if len(prog.Blocks) != len(w.Prog.Blocks) {
		return fmt.Errorf("program has %d blocks; %s generates %d — wrong app?",
			len(prog.Blocks), *app, len(w.Prog.Blocks))
	}
	cfg := simCfgFor(w, *instrs)
	base := sim.Run(w.Prog, workload.NewExecutor(w, workload.DefaultInput(w)), cfg, nil)
	st := sim.Run(prog, workload.NewExecutor(w, workload.DefaultInput(w)), cfg, nil)
	fmt.Printf("%s: +%.1f%% speedup, MPKI %.2f → %.2f (%.1f%% reduction), accuracy %.1f%%\n",
		*app, metrics.SpeedupPct(base.Cycles, st.Cycles),
		base.MPKI(), st.MPKI(), metrics.Reduction(base.MPKI(), st.MPKI()),
		st.PrefetchAccuracy()*100)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	profPath := fs.String("profile", "", "profile file")
	progPath := fs.String("prog", "", "program file")
	fs.Parse(args)
	switch {
	case *profPath != "":
		_, pd, err := loadProfile(*profPath)
		if err != nil {
			return err
		}
		fmt.Printf("profile of %s (input %q): %d misses, %d sites, hash density %.3f, base CPI %.2f\n",
			pd.WorkloadName, pd.InputName, pd.TotalMisses, len(pd.Graph.Sites),
			pd.AvgHashDensity, float64(pd.BaseCycles)/float64(pd.BaseInstrs))
	case *progPath != "":
		f, err := os.Open(*progPath)
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err := traceio.ReadProgram(f)
		if err != nil {
			return err
		}
		kinds := prog.NumPrefetches()
		fmt.Printf("program: %d funcs, %d blocks, %d KB text; prefetches: %d plain, %d Cprefetch, %d Lprefetch, %d CLprefetch\n",
			len(prog.Funcs), len(prog.Blocks), prog.TextSize>>10,
			kinds[isa.KindPrefetch], kinds[isa.KindCprefetch],
			kinds[isa.KindLprefetch], kinds[isa.KindCLprefetch])
	default:
		return fmt.Errorf("info: need -profile or -prog")
	}
	return nil
}
