// ispy-diag is the developer diagnostics tool: side-by-side per-application
// comparisons of baseline / ideal / AsmDB / I-SPY, and residual-miss
// decomposition for the injected binary. It exposes the raw numbers the
// polished experiment harness (cmd/ispy) aggregates.
//
// Usage:
//
//	ispy-diag compare [app...]    one-line comparison per app (default: all)
//	ispy-diag residual [app...]   decompose I-SPY's remaining misses
package main

import (
	"fmt"
	"os"
	"time"

	"ispy/internal/asmdb"
	"ispy/internal/core"
	"ispy/internal/isa"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/workload"
)

func main() {
	cmd := "compare"
	args := os.Args[1:]
	if len(args) > 0 {
		cmd = args[0]
		args = args[1:]
	}
	apps := workload.AppNames
	if len(args) > 0 {
		apps = args
	}
	switch cmd {
	case "compare":
		for _, name := range apps {
			compare(name)
		}
	case "residual":
		for _, name := range apps {
			residual(name)
		}
	default:
		fmt.Fprintf(os.Stderr, "usage: ispy-diag {compare|residual} [app...]\n")
		os.Exit(2)
	}
}

func runProg(w *workload.Workload, prog *isa.Program, cfg sim.Config) *sim.Stats {
	return sim.Run(prog, workload.NewExecutor(w, workload.DefaultInput(w)), cfg, nil)
}

func compare(name string) {
	w := workload.Preset(name)
	cfg := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)

	t0 := time.Now()
	base := runProg(w, w.Prog, cfg)
	idealCfg := cfg
	idealCfg.Ideal = true
	ideal := runProg(w, w.Prog, idealCfg)

	prof := profile.Collect(w, workload.DefaultInput(w), cfg)
	adb := asmdb.BuildDefault(prof, core.DefaultOptions())
	adbStats := runProg(w, adb.Prog, asmdb.RunConfig(cfg))
	ispy := core.BuildISPY(prof, cfg, core.DefaultOptions())
	ispyStats := runProg(w, ispy.Prog, cfg)

	sp := func(s *sim.Stats) float64 { return (float64(base.Cycles)/float64(s.Cycles) - 1) * 100 }
	pctIdeal := func(s *sim.Stats) float64 {
		return (float64(base.Cycles)/float64(s.Cycles) - 1) / (float64(base.Cycles)/float64(ideal.Cycles) - 1) * 100
	}
	kc := ispy.Plan.KindCounts()
	fmt.Printf("%-16s ideal=%5.1f%% asmdb=%5.1f%%(%4.0f%%id acc=%4.1f%% dyn=%4.1f%% mpki=%5.2f) ispy=%5.1f%%(%4.0f%%id acc=%4.1f%% dyn=%4.1f%% mpki=%5.2f fp=%4.1f%%) baseMPKI=%5.2f kinds=[P%d C%d L%d CL%d] stat=%.1f%%/%.1f%% [%.1fs]\n",
		name, sp(ideal),
		sp(adbStats), pctIdeal(adbStats), adbStats.PrefetchAccuracy()*100, adbStats.DynFootprintIncrease()*100, adbStats.MPKI(),
		sp(ispyStats), pctIdeal(ispyStats), ispyStats.PrefetchAccuracy()*100, ispyStats.DynFootprintIncrease()*100, ispyStats.MPKI(),
		ispyStats.CondFalsePositiveRate()*100,
		base.MPKI(),
		kc[isa.KindPrefetch], kc[isa.KindCprefetch], kc[isa.KindLprefetch], kc[isa.KindCLprefetch],
		adb.StaticIncrease(w.Prog)*100, ispy.StaticIncrease(w.Prog)*100,
		time.Since(t0).Seconds())
}
