// Residual-miss decomposition: classify the misses that remain after I-SPY
// injection by (a) whether the line was profiled and planned, and (b) which
// program component it belongs to. This is the view that drove the injection
// invariants in core (straddle coverage) during development.
package main

import (
	"fmt"
	"sort"
	"strings"

	"ispy/internal/cfg"
	"ispy/internal/core"
	"ispy/internal/lbr"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/workload"
)

func residual(name string) {
	w := workload.Preset(name)
	scfg := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)
	prof := profile.Collect(w, workload.DefaultInput(w), scfg)
	ispy := core.BuildISPY(prof, scfg, core.DefaultOptions())
	fmt.Printf("%s: hash density %.3f\n", name, prof.AvgHashDensity)

	planned := make(map[cfg.LineKey]bool)
	for _, pf := range ispy.Plan.Prefetches {
		for _, t := range pf.Targets {
			planned[t] = true
		}
	}
	profiled := make(map[cfg.LineKey]uint64, len(prof.Graph.Sites))
	for k, s := range prof.Graph.Sites {
		profiled[k] = s.Count
	}

	byCat := map[string]uint64{}
	funcName := func(block int) string {
		return w.Prog.Funcs[w.Prog.Blocks[block].Func].Name
	}
	cat := func(fn string) string {
		switch {
		case strings.HasPrefix(fn, "fragment"):
			return "fragment"
		case strings.HasPrefix(fn, "handler"):
			return "handler"
		case strings.HasPrefix(fn, "parse_t"):
			return "parse_t"
		case strings.HasPrefix(fn, "helper"):
			return "helper"
		default:
			return fn
		}
	}

	var total uint64
	hooks := &sim.Hooks{OnMiss: func(block int, delta int32, cycle uint64, l *lbr.LBR) {
		total++
		key := cfg.LineKey{Block: int32(block), Delta: delta}
		status := "unprofiled" // line never missed during profiling
		if _, ok := profiled[key]; ok {
			status = "profiled-unplanned"
			if planned[key] {
				status = "planned" // prefetch existed but was late/suppressed/evicted
			}
		}
		byCat[status+"/"+cat(funcName(block))]++
	}}
	st := sim.Run(ispy.Prog, workload.NewExecutor(w, workload.DefaultInput(w)), scfg, hooks)

	fmt.Printf("  residual misses=%d mpki=%.2f (suppressed=%d lateWaits=%d condFired=%d/%d)\n",
		total, st.MPKI(), st.CondSuppressed, st.LateWaits, st.CondFired, st.CondExecuted)
	keys := make([]string, 0, len(byCat))
	for k := range byCat {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return byCat[keys[i]] > byCat[keys[j]] })
	for i, k := range keys {
		if i >= 12 {
			break
		}
		fmt.Printf("  %-42s %6d (%.1f%%)\n", k, byCat[k], float64(byCat[k])/float64(total)*100)
	}
}
