// ispy-vet runs the repository's determinism & invariant analyzer
// (internal/vetting) over the module and prints findings in the canonical
// `file:line: pass: message` form. It is part of the gate (`make check`,
// scripts/check.sh, CI): any finding is a non-zero exit.
//
// Usage:
//
//	ispy-vet [-waivers] [./...]
//
// The package pattern is accepted for familiarity but the analyzer always
// vets the whole module containing the working directory — the passes are
// module-global (stats exhaustiveness needs every reader, freeze rules
// name specific packages), so partial loads would under-report.
//
// -waivers lists every //ispy: waiver in effect instead of vetting, for
// periodic review (`make vet-waivers`).
//
// Exit codes: 0 clean, 1 findings, 2 load/usage failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"ispy/internal/vetting"
)

func main() {
	listWaivers := flag.Bool("waivers", false, "list waivered sites instead of vetting")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ispy-vet [-waivers] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "ispy-vet: unsupported pattern %q (the module is always vetted whole)\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := vetting.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader := vetting.NewLoader()
	pkgs, err := loader.LoadModule(modRoot)
	if err != nil {
		fatal(err)
	}

	res := vetting.Run(pkgs, vetting.DefaultConfig())

	if *listWaivers {
		for _, w := range res.Waivers {
			fmt.Printf("%s:%d: //ispy:%s %s\n", w.Pos.Filename, w.Pos.Line, w.Directive, w.Reason)
		}
		fmt.Printf("ispy-vet: %d waiver(s) in effect\n", len(res.Waivers))
		return
	}

	for _, d := range res.Diags {
		fmt.Println(d)
	}
	fmt.Fprintf(os.Stderr, "ispy-vet: %d issue(s), %d waiver(s) in effect\n", len(res.Diags), len(res.Waivers))
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ispy-vet: %v\n", err)
	os.Exit(2)
}
