// ispy-vet runs the repository's determinism & invariant analyzer
// (internal/vetting) over the module and prints findings in the canonical
// `file:line: pass: message` form. It is part of the gate (`make check`,
// scripts/check.sh, CI): any finding is a non-zero exit.
//
// Usage:
//
//	ispy-vet [-waivers] [-json] [-strict] [-v] [-only pass,...] [./...]
//
// The package pattern is accepted for familiarity but the analyzer always
// vets the whole module containing the working directory — the passes are
// module-global (stats exhaustiveness needs every reader, freeze rules
// name specific packages, the hot-path proof walks the whole call graph),
// so partial loads would under-report.
//
// -waivers lists every //ispy: waiver in effect instead of vetting, for
// periodic review (`make vet-waivers`).
//
// -json emits one JSON object per line — {"file","line","pass","message",
// "waived"} — covering both live findings (waived:false) and findings a
// waiver suppressed (waived:true), for tooling that audits the waiver
// ledger alongside the failures. Paths are module-relative. After the
// findings, the keysound field-coverage table follows as one
// {"table":"keysound","struct","field","compute_read","folded","waived"}
// object per audited field — a distinct shape, so per-pass finding counts
// keyed on "pass" stay accurate.
//
// -strict promotes advisory findings (stale waivers) to gate failures.
// The gate runs strict; plain invocations report them as warnings.
//
// -v prints per-pass wall times to stderr after the run.
//
// -only restricts vetting to a comma-separated subset of passes (see
// vetting.PassNames), for iterating on one class of finding. Unknown names
// are a usage error. Stale-waiver accounting narrows with the subset: a
// waiver for a de-selected pass is not stale, but an unused waiver of a
// pass that did run is still reported — so -only composes with -strict
// instead of weakening it.
//
// Under GitHub Actions (GITHUB_ACTIONS=true) findings are additionally
// emitted as ::error/::warning workflow annotations so they appear inline
// on the PR diff.
//
// Exit codes: 0 clean, 1 findings, 2 load/usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ispy/internal/vetting"
)

func main() {
	listWaivers := flag.Bool("waivers", false, "list waivered sites instead of vetting")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding (live and waived)")
	strict := flag.Bool("strict", false, "treat advisory findings (stale waivers) as failures")
	verbose := flag.Bool("v", false, "print per-pass wall times to stderr")
	only := flag.String("only", "", "comma-separated pass subset to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ispy-vet [-waivers] [-json] [-strict] [-v] [-only pass,...] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	var onlyPasses []string
	if *only != "" {
		known := make(map[string]bool, len(vetting.PassNames))
		for _, name := range vetting.PassNames {
			known[name] = true
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				fmt.Fprintf(os.Stderr, "ispy-vet: unknown pass %q (known: %s)\n",
					name, strings.Join(vetting.PassNames, ", "))
				os.Exit(2)
			}
			onlyPasses = append(onlyPasses, name)
		}
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "ispy-vet: unsupported pattern %q (the module is always vetted whole)\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := vetting.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader := vetting.NewLoader()
	pkgs, err := loader.LoadModule(modRoot)
	if err != nil {
		fatal(err)
	}

	cfg := vetting.DefaultConfig()
	cfg.Only = onlyPasses
	res := vetting.Run(pkgs, cfg)

	if *listWaivers {
		for _, w := range res.Waivers {
			fmt.Printf("%s:%d: //ispy:%s %s\n", relTo(modRoot, w.Pos.Filename), w.Pos.Line, w.Directive, w.Reason)
		}
		fmt.Printf("ispy-vet: %d waiver(s) in effect\n", len(res.Waivers))
		return
	}

	gh := os.Getenv("GITHUB_ACTIONS") == "true"
	hard, advisory := 0, 0
	for _, d := range res.Diags {
		if d.Advisory && !*strict {
			advisory++
		} else {
			hard++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		emit := func(d vetting.Diagnostic, waived bool) {
			enc.Encode(jsonDiag{
				File:    relTo(modRoot, d.Pos.Filename),
				Line:    d.Pos.Line,
				Pass:    string(d.Pass),
				Message: d.Message,
				Waived:  waived,
			})
		}
		for _, d := range res.Diags {
			emit(d, false)
		}
		for _, d := range res.Suppressed {
			emit(d, true)
		}
		for _, c := range res.Coverage {
			enc.Encode(jsonCoverage{
				Table:       "keysound",
				Struct:      c.Struct,
				Field:       c.Field,
				ComputeRead: c.ComputeRead,
				Folded:      c.Folded,
				Waived:      c.Waived,
			})
		}
	} else {
		for _, d := range res.Diags {
			d.Pos.Filename = relTo(modRoot, d.Pos.Filename)
			if d.Advisory && !*strict {
				fmt.Printf("%s (advisory; fails under -strict)\n", d)
			} else {
				fmt.Println(d)
			}
		}
	}
	if gh {
		for _, d := range res.Diags {
			level := "error"
			if d.Advisory && !*strict {
				level = "warning"
			}
			// ::error file=...,line=...,title=...::message annotations render
			// inline on the PR diff.
			fmt.Printf("::%s file=%s,line=%d,title=ispy-vet (%s)::%s\n",
				level, relTo(modRoot, d.Pos.Filename), d.Pos.Line, d.Pass, ghEscape(d.Message))
		}
	}

	if *verbose {
		for _, t := range res.Timings {
			fmt.Fprintf(os.Stderr, "ispy-vet: pass %-12s %v\n", t.Pass, t.Elapsed.Round(time.Microsecond))
		}
	}
	fmt.Fprintf(os.Stderr, "ispy-vet: %d issue(s), %d advisory, %d waiver(s) in effect\n",
		hard, advisory, len(res.Waivers))
	if hard > 0 {
		os.Exit(1)
	}
}

// jsonDiag is the -json line format: stable field names for tooling.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
	Waived  bool   `json:"waived"`
}

// jsonCoverage is one keysound field-coverage row under -json. It carries a
// "table" discriminator and no "pass" key, so tools counting findings per
// pass never mistake coverage rows for diagnostics.
type jsonCoverage struct {
	Table       string `json:"table"`
	Struct      string `json:"struct"`
	Field       string `json:"field"`
	ComputeRead bool   `json:"compute_read"`
	Folded      bool   `json:"folded"`
	Waived      bool   `json:"waived"`
}

// relTo renders a path relative to the module root where possible; the
// absolute path is noise in output meant for diffs and annotations.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}

// ghEscape encodes a message for a workflow-command data section: the
// runner parses %, CR and LF specially.
func ghEscape(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%':
			out = append(out, "%25"...)
		case '\r':
			out = append(out, "%0D"...)
		case '\n':
			out = append(out, "%0A"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ispy-vet: %v\n", err)
	os.Exit(2)
}
