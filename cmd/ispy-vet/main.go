// ispy-vet runs the repository's determinism & invariant analyzer
// (internal/vetting) over the module and prints findings in the canonical
// `file:line: pass: message` form. It is part of the gate (`make check`,
// scripts/check.sh, CI): any finding is a non-zero exit.
//
// Usage:
//
//	ispy-vet [-waivers] [-json] [-strict] [-only pass,...] [./...]
//
// The package pattern is accepted for familiarity but the analyzer always
// vets the whole module containing the working directory — the passes are
// module-global (stats exhaustiveness needs every reader, freeze rules
// name specific packages, the hot-path proof walks the whole call graph),
// so partial loads would under-report.
//
// -waivers lists every //ispy: waiver in effect instead of vetting, for
// periodic review (`make vet-waivers`).
//
// -json emits one JSON object per line — {"file","line","pass","message",
// "waived"} — covering both live findings (waived:false) and findings a
// waiver suppressed (waived:true), for tooling that audits the waiver
// ledger alongside the failures. Paths are module-relative.
//
// -strict promotes advisory findings (stale waivers) to gate failures.
// The gate runs strict; plain invocations report them as warnings.
//
// -only restricts vetting to a comma-separated subset of passes (see
// vetting.PassNames), for iterating on one class of finding. Unknown names
// are a usage error. Unused-waiver accounting is suppressed under -only —
// a waiver for a disabled pass is not stale — so it composes with -strict.
//
// Under GitHub Actions (GITHUB_ACTIONS=true) findings are additionally
// emitted as ::error/::warning workflow annotations so they appear inline
// on the PR diff.
//
// Exit codes: 0 clean, 1 findings, 2 load/usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ispy/internal/vetting"
)

func main() {
	listWaivers := flag.Bool("waivers", false, "list waivered sites instead of vetting")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding (live and waived)")
	strict := flag.Bool("strict", false, "treat advisory findings (stale waivers) as failures")
	only := flag.String("only", "", "comma-separated pass subset to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ispy-vet [-waivers] [-json] [-strict] [-only pass,...] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	var onlyPasses []string
	if *only != "" {
		known := make(map[string]bool, len(vetting.PassNames))
		for _, name := range vetting.PassNames {
			known[name] = true
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				fmt.Fprintf(os.Stderr, "ispy-vet: unknown pass %q (known: %s)\n",
					name, strings.Join(vetting.PassNames, ", "))
				os.Exit(2)
			}
			onlyPasses = append(onlyPasses, name)
		}
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "ispy-vet: unsupported pattern %q (the module is always vetted whole)\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := vetting.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader := vetting.NewLoader()
	pkgs, err := loader.LoadModule(modRoot)
	if err != nil {
		fatal(err)
	}

	cfg := vetting.DefaultConfig()
	cfg.Only = onlyPasses
	res := vetting.Run(pkgs, cfg)

	if *listWaivers {
		for _, w := range res.Waivers {
			fmt.Printf("%s:%d: //ispy:%s %s\n", relTo(modRoot, w.Pos.Filename), w.Pos.Line, w.Directive, w.Reason)
		}
		fmt.Printf("ispy-vet: %d waiver(s) in effect\n", len(res.Waivers))
		return
	}

	gh := os.Getenv("GITHUB_ACTIONS") == "true"
	hard, advisory := 0, 0
	for _, d := range res.Diags {
		if d.Advisory && !*strict {
			advisory++
		} else {
			hard++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		emit := func(d vetting.Diagnostic, waived bool) {
			enc.Encode(jsonDiag{
				File:    relTo(modRoot, d.Pos.Filename),
				Line:    d.Pos.Line,
				Pass:    string(d.Pass),
				Message: d.Message,
				Waived:  waived,
			})
		}
		for _, d := range res.Diags {
			emit(d, false)
		}
		for _, d := range res.Suppressed {
			emit(d, true)
		}
	} else {
		for _, d := range res.Diags {
			d.Pos.Filename = relTo(modRoot, d.Pos.Filename)
			if d.Advisory && !*strict {
				fmt.Printf("%s (advisory; fails under -strict)\n", d)
			} else {
				fmt.Println(d)
			}
		}
	}
	if gh {
		for _, d := range res.Diags {
			level := "error"
			if d.Advisory && !*strict {
				level = "warning"
			}
			// ::error file=...,line=...,title=...::message annotations render
			// inline on the PR diff.
			fmt.Printf("::%s file=%s,line=%d,title=ispy-vet (%s)::%s\n",
				level, relTo(modRoot, d.Pos.Filename), d.Pos.Line, d.Pass, ghEscape(d.Message))
		}
	}

	fmt.Fprintf(os.Stderr, "ispy-vet: %d issue(s), %d advisory, %d waiver(s) in effect\n",
		hard, advisory, len(res.Waivers))
	if hard > 0 {
		os.Exit(1)
	}
}

// jsonDiag is the -json line format: stable field names for tooling.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
	Waived  bool   `json:"waived"`
}

// relTo renders a path relative to the module root where possible; the
// absolute path is noise in output meant for diffs and annotations.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}

// ghEscape encodes a message for a workflow-command data section: the
// runner parses %, CR and LF specially.
func ghEscape(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%':
			out = append(out, "%25"...)
		case '\r':
			out = append(out, "%0D"...)
		case '\n':
			out = append(out, "%0A"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ispy-vet: %v\n", err)
	os.Exit(2)
}
