// ispyd is the I-SPY analysis service: a long-running HTTP server that
// answers miss-context analysis + coalescing + simulation requests over the
// same pipeline the batch harness (cmd/ispy) runs, hardened with retries,
// per-request deadlines, and an artifact-layer circuit breaker
// (internal/server, DESIGN.md §12).
//
// Usage:
//
//	ispyd serve [flags]     serve HTTP until SIGINT/SIGTERM, then drain
//	ispyd soak  [flags]     run the in-process chaos soak and exit
//
// Serve flags:
//
//	-addr A        listen address (default 127.0.0.1:7925)
//	-cache-dir D   persist artifacts in D across requests
//	-jobs N        worker-pool size shared by all requests
//	-instrs N      default measured instruction budget per request
//	-max-timeout D hard per-request deadline cap (default 2m)
//	-drain D       drain budget after SIGTERM before in-flight work is cut (default 30s)
//	-faults S      arm deterministic chaos at tagged sites (testing)
//	-fault-seed N  seed for -faults decisions and retry jitter
//
// Soak flags (additionally):
//
//	-workers N     concurrent chaos clients (default 4)
//	-requests N    requests per worker (default 6)
//	-apps a,b      apps to cycle over
//	-scenario S    also cycle a multi-tenant scenario spec (docs/WORKLOADS.md)
//
// Endpoints: POST /v1/analyze ({"app"|"scenario","instrs","timeout_millis"}),
// POST /v1/profile/analyze (traceio profile bytes, as written by
// `ispy-profile collect`), GET /healthz, /readyz, /statusz.
//
// Exit codes: 0 — clean serve shutdown / every soak invariant held; 1 — a
// serve failure or a soak invariant violation; 2 — usage or configuration
// error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ispy/internal/experiments"
	"ispy/internal/faults"
	"ispy/internal/server"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// realMain is the whole CLI behind a single exit path; nothing in this
// package calls os.Exit except main itself.
func realMain(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		usage(stderr)
		return exitUsage
	}
	cmd, rest := argv[0], argv[1:]

	fs := flag.NewFlagSet("ispyd "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7925", "listen address")
	cacheDir := fs.String("cache-dir", "", "artifact cache directory (shared across requests)")
	jobs := fs.Int("jobs", 0, "worker-pool size (default: GOMAXPROCS)")
	instrs := fs.Uint64("instrs", 0, "default measured instruction budget per request")
	maxTimeout := fs.Duration("max-timeout", 0, "per-request deadline cap (default 2m)")
	drain := fs.Duration("drain", 30*time.Second, "drain budget after SIGTERM")
	faultSpec := fs.String("faults", "", "fault-injection spec: pattern=kind[:prob],... (testing)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for -faults decisions and retry jitter")
	workers := fs.Int("workers", 4, "soak: concurrent chaos clients")
	requests := fs.Int("requests", 6, "soak: requests per worker")
	apps := fs.String("apps", "", "soak: comma-separated apps to cycle over")
	scenario := fs.String("scenario", "", "soak: multi-tenant scenario spec to cycle (see docs/WORKLOADS.md)")
	if err := fs.Parse(rest); err != nil {
		return exitUsage
	}

	cfg := server.Config{
		CacheDir:   *cacheDir,
		Jobs:       *jobs,
		MaxTimeout: *maxTimeout,
		Seed:       *faultSeed,
		Log:        stderr,
	}
	if *instrs != 0 {
		cfg.Lab = experiments.QuickConfig().WithMeasureInstrs(*instrs)
	}

	switch cmd {
	case "serve":
		if *faultSpec != "" {
			inj, err := faults.ParseSpec(*faultSeed, *faultSpec)
			if err != nil {
				fmt.Fprintf(stderr, "ispyd: %v\n", err)
				return exitUsage
			}
			cfg.Faults = inj
		}
		return serve(cfg, *addr, *drain, stdout, stderr)
	case "soak":
		return soak(cfg, server.SoakConfig{
			Apps:              parseApps(*apps),
			Scenario:          *scenario,
			Workers:           *workers,
			RequestsPerWorker: *requests,
			Instrs:            *instrs,
			FaultSpec:         *faultSpec,
			Seed:              *faultSeed,
			Out:               stderr,
		}, stdout, stderr)
	default:
		usage(stderr)
		return exitUsage
	}
}

// serve runs the service until SIGINT/SIGTERM, then drains: readiness flips
// first, in-flight requests finish within the drain budget, and a clean
// drain exits 0.
func serve(cfg server.Config, addr string, drain time.Duration, stdout, stderr io.Writer) int {
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "ispyd: %v\n", err)
		return exitUsage
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "ispyd: %v\n", err)
		return exitUsage
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "ispyd: serving on http://%s\n", l.Addr())
	if err := s.Serve(ctx, l, drain); err != nil {
		fmt.Fprintf(stderr, "ispyd: serve: %v\n", err)
		return exitFailure
	}
	fmt.Fprintf(stdout, "ispyd: drained; %s\n", s.Requests().Snapshot().Summary())
	return exitOK
}

// soak runs the chaos harness and renders its report. Exit 0 means every
// graceful-degradation invariant held; 1 names the first violation.
func soak(cfg server.Config, sc server.SoakConfig, stdout, stderr io.Writer) int {
	if sc.FaultSpec == "" {
		// A soak without chaos proves nothing; pick the default storm.
		sc.FaultSpec = "artifacts.read=corrupt:0.3,artifacts.write=short:0.3," +
			"compute/base/*=panic:0.2,compute/prepared/*=latency:0.5"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := server.Soak(ctx, cfg, sc)
	if rep != nil {
		fmt.Fprintf(stdout, "soak: %d requests: %d canonical, %d graceful errors; %d faults fired\n",
			rep.Requests, rep.OK, rep.Degraded, rep.FaultsHit)
		if r := rep.Reference; r != nil {
			fmt.Fprintf(stdout, "soak: reference %s @ %d instrs: baseline %d cycles / %d misses → "+
				"ispy %d cycles / %d misses (%.3fx), %d prefetches (%d conditional, %d coalesced), "+
				"%d/%d misses planned (%d uncovered), %d prefetch instrs issuing %d lines, "+
				"stall %d → %d cycles over %d/%d instrs\n",
				r.App, r.Instrs, r.Baseline.Cycles, r.Baseline.L1IMisses,
				r.ISPY.Cycles, r.ISPY.L1IMisses, r.Speedup,
				r.Plan.Prefetches, r.Plan.Conditional, r.Plan.Coalesced,
				r.Plan.MissesPlanned, r.Plan.MissesTotal, r.Plan.MissesUncovered,
				r.ISPY.PrefetchInstrs, r.ISPY.PrefetchLinesIssued,
				r.Baseline.StallCycles, r.ISPY.StallCycles,
				r.Baseline.Instrs, r.ISPY.Instrs)
		}
		if r := rep.Scenario; r != nil {
			fmt.Fprintf(stdout, "soak: scenario %q @ %d instrs: baseline %d misses → ispy %d (%.3fx speedup)\n",
				r.Scenario, r.Instrs, r.Baseline.L1IMisses, r.ISPY.L1IMisses, r.Speedup)
			rows := append(append([]server.TenantSummary{}, r.Tenants...), r.SLOClasses...)
			for _, t := range rows {
				label := t.Name
				if t.App != "" {
					label += " (" + t.App + ")"
				}
				fmt.Fprintf(stdout, "soak:   %-28s slo=%-12s requests=%-4d mpki %.3f → %.3f\n",
					label, t.SLO, t.Requests, t.BaseMPKI, t.ISPYMPKI)
			}
		}
		for _, v := range rep.Violations {
			fmt.Fprintf(stderr, "soak: violation: %s\n", v)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "ispyd: %v\n", err)
		if strings.Contains(err.Error(), "duplicate clause") || strings.Contains(err.Error(), "not pattern=") {
			return exitUsage
		}
		return exitFailure
	}
	fmt.Fprintln(stdout, "soak: PASS — all graceful-degradation invariants held")
	return exitOK
}

// parseApps splits a comma-separated app list, trimming whitespace and
// dropping empty entries.
func parseApps(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func usage(stderr io.Writer) {
	fmt.Fprint(stderr, `ispyd — the I-SPY analysis service

usage:
  ispyd serve [flags]   serve HTTP until SIGINT/SIGTERM, then drain
  ispyd soak  [flags]   run the in-process chaos soak and exit

exit codes: 0 clean shutdown / soak passed; 1 failure or invariant
violation; 2 usage error

run "ispyd serve -h" or "ispyd soak -h" for flags
`)
}
