package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitContract pins the documented 0/1/2 exit codes at the realMain
// boundary without spawning processes.
func TestExitContract(t *testing.T) {
	run := func(args ...string) (int, string, string) {
		var out, errw bytes.Buffer
		code := realMain(args, &out, &errw)
		return code, out.String(), errw.String()
	}

	if code, _, _ := run(); code != exitUsage {
		t.Errorf("no args exits %d, want %d", code, exitUsage)
	}
	if code, _, _ := run("bogus"); code != exitUsage {
		t.Errorf("unknown command exits %d, want %d", code, exitUsage)
	}
	if code, _, errs := run("soak", "-faults", "a=error,a=corrupt"); code != exitUsage {
		t.Errorf("duplicate fault clause exits %d, want %d (stderr %q)", code, exitUsage, errs)
	}
	if code, _, _ := run("serve", "-addr", "256.0.0.1:99999"); code != exitUsage {
		t.Errorf("bad listen address exits %d, want %d", code, exitUsage)
	}
}

// TestSoakCommandPasses runs the full chaos soak through the CLI with small
// budgets: exit 0, a PASS verdict, and the reference line on stdout.
func TestSoakCommandPasses(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{
		"soak",
		"-cache-dir", t.TempDir(),
		"-apps", "wordpress",
		"-workers", "2", "-requests", "2",
		"-instrs", "60000",
		"-fault-seed", "20260807",
	}, &out, &errw)
	if code != exitOK {
		t.Fatalf("soak exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "soak: PASS") {
		t.Errorf("stdout missing PASS verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "reference wordpress @ 60000 instrs") {
		t.Errorf("stdout missing reference summary:\n%s", out.String())
	}
}
