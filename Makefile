GO ?= go

.PHONY: check vet build test race fuzz faultsmoke bench

# The full gate: what CI (and every PR) must pass.
check: vet build race fuzz faultsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short continuous-fuzzing pass over the trace decoders; regressions land in
# internal/traceio/testdata/fuzz and replay as ordinary tests forever after.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=5s ./internal/traceio

# End-to-end fault-injection smoke: an injected panic must degrade the run
# (exit 1 with a report), not crash it.
faultsmoke:
	@$(GO) run ./cmd/ispy -apps tomcat -instrs 120000 \
		-faults 'compute/base/*=panic' run fig1 >/dev/null 2>&1; \
	rc=$$?; if [ $$rc -ne 1 ]; then \
		echo "faultsmoke: exit code $$rc, want 1"; exit 1; fi
	@echo "faultsmoke: ok (exit 1 with contained failure)"

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...
