GO ?= go

.PHONY: check vet build test race bench

# The full gate: what CI (and every PR) must pass.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...
