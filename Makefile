GO ?= go

.PHONY: check fmtcheck vet ispyvet vetsmoke vet-waivers build test race fuzz faultsmoke chaossmoke scenariosmoke benchsmoke benchall bench

# The full gate: what CI (and every PR) must pass.
check: fmtcheck vet ispyvet vetsmoke build race fuzz faultsmoke chaossmoke scenariosmoke benchsmoke

# gofmt enforcement: fails listing any file that needs formatting.
fmtcheck:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt -l flagged:"; echo "$$unformatted"; exit 1; fi
	@echo "fmtcheck: ok"

vet:
	$(GO) vet ./...

# The repo's own determinism & invariant analyzer (see DESIGN.md §10).
# Strict mode: stale waivers fail the gate. The -json invocation is a
# smoke test for the machine-readable output tooling depends on.
ispyvet:
	$(GO) run ./cmd/ispy-vet -strict ./...
	@$(GO) run ./cmd/ispy-vet -json ./... > /dev/null 2>&1 || \
		{ echo "ispyvet: -json smoke failed"; exit 1; }
	@echo "ispyvet: -json smoke ok"

# End-to-end proof that the cache-soundness gate bites: graft the two
# canonical regressions (a Config field the kernel reads but the key never
# folds; a time.Now() folded into an analyze response) onto pristine module
# copies and require `ispy-vet -strict` to fail each with the right pass.
vetsmoke:
	$(GO) test -run 'TestInjectedRegressions/(keysound|purity)' ./internal/vetting

# List every //ispy: waiver in effect, for periodic review.
vet-waivers:
	$(GO) run ./cmd/ispy-vet -waivers ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short continuous-fuzzing pass over the trace decoders; regressions land in
# internal/traceio/testdata/fuzz and replay as ordinary tests forever after.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=5s ./internal/traceio

# End-to-end fault-injection smoke: an injected panic must degrade the run
# (exit 1 with a report), not crash it.
faultsmoke:
	@$(GO) run ./cmd/ispy -apps tomcat -instrs 120000 \
		-faults 'compute/base/*=panic' run fig1 >/dev/null 2>&1; \
	rc=$$?; if [ $$rc -ne 1 ]; then \
		echo "faultsmoke: exit code $$rc, want 1"; exit 1; fi
	@echo "faultsmoke: ok (exit 1 with contained failure)"

# Server chaos smoke: the ispyd soak must hold every graceful-degradation
# invariant (canonical or structured responses, no partial cache writes,
# clean drain) under injected corruption, torn writes, and panics (exit 0;
# see DESIGN.md §12).
chaossmoke:
	@$(GO) run ./cmd/ispyd soak -apps wordpress -workers 2 -requests 3 \
		-instrs 60000 -fault-seed 20260807 >/dev/null 2>&1 || \
		{ echo "chaossmoke: soak reported an invariant violation"; exit 1; }
	@echo "chaossmoke: ok (all graceful-degradation invariants held)"

# Multi-tenant scenario smoke: a bursty two-tenant scenario must run clean
# through the batch CLI and through the ispyd soak's scenario target (the
# spec grammar is docs/WORKLOADS.md; determinism is pinned by golden tests).
SCENARIO := name=smoke;seed=11;requests=160;arrival=gamma:0.7;day=0.6,1.4;zipf=0.8;tenants=wordpress:slo=interactive,tomcat:slo=batch
scenariosmoke:
	@$(GO) run ./cmd/ispy -instrs 120000 -scenario '$(SCENARIO)' >/dev/null 2>&1 || \
		{ echo "scenariosmoke: ispy -scenario failed"; exit 1; }
	@$(GO) run ./cmd/ispyd soak -apps wordpress -workers 2 -requests 2 \
		-instrs 60000 -fault-seed 20260807 -scenario '$(SCENARIO)' >/dev/null 2>&1 || \
		{ echo "scenariosmoke: ispyd soak with -scenario failed"; exit 1; }
	@echo "scenariosmoke: ok (CLI scenario + soak scenario target both clean)"

# Benchmark smoke: scripts/bench.sh must produce parseable JSON, and its
# built-in regression gate must pass against the newest committed
# BENCH_PR*.json (>10% wordpress-throughput loss fails; bench.sh -no-gate
# is the escape hatch for noisy machines). The test skips itself unless the
# env var is set because it spawns a nested `go test -bench`.
benchsmoke:
	ISPY_BENCH_SMOKE=1 $(GO) test -run TestBenchScriptEmitsJSON .

# The full benchmark suite (per-figure regeneration + ablations).
benchall:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# The reproducible perf baseline: headline benchmarks → BENCH_PR$(PR).json
# at the repo root, gated against the newest committed baseline (see
# docs/PERFORMANCE.md). Override the label with `make bench PR=7`.
PR ?= 6
bench:
	./scripts/bench.sh -pr $(PR)
