// Inputdrift: the Fig. 16 scenario — profile a service under one load, then
// deploy the optimized binary against inputs whose request mix has drifted
// (rotated popularity ranks, flatter/sharper skews, fully reversed ranks).
//
// Data-center loads shift diurnally; a profile-guided optimization that only
// helps on the profiled input is useless in production. Conditional
// prefetching makes I-SPY resilient: a prefetch fires only when the run-time
// context says the miss is coming, so stale profile assumptions suppress
// themselves.
//
// Run with: go run ./examples/inputdrift [app]
package main

import (
	"fmt"
	"os"

	"ispy/internal/asmdb"
	"ispy/internal/core"
	"ispy/internal/isa"
	"ispy/internal/metrics"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/workload"
)

func main() {
	app := "mediawiki"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	w := workload.Preset(app)
	scfg := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)

	// Profile ONLY on the default input.
	prof := profile.Collect(w, workload.DefaultInput(w), scfg)
	adb := asmdb.BuildDefault(prof, core.DefaultOptions())
	ispy := core.BuildISPY(prof, scfg, core.DefaultOptions())

	fmt.Printf("profiled %q on input %q; evaluating on 5 inputs\n\n", app, workload.DefaultInput(w).Name)
	fmt.Printf("%-26s %14s %14s %14s\n", "input", "ideal speedup", "asmdb %ideal", "i-spy %ideal")

	run := func(p *isa.Program, in workload.Input, ideal bool) *sim.Stats {
		c := scfg
		c.Ideal = ideal
		return sim.Run(p, workload.NewExecutor(w, in), c, nil)
	}
	for _, in := range workload.DriftedInputs(w, 5) {
		base := run(w.Prog, in, false)
		ideal := run(w.Prog, in, true)
		adbSt := run(adb.Prog, in, false)
		ispySt := run(ispy.Prog, in, false)
		fmt.Printf("%-26s %13.1f%% %13.1f%% %13.1f%%\n",
			in.Name,
			metrics.SpeedupPct(base.Cycles, ideal.Cycles),
			metrics.PctOfIdeal(base.Cycles, adbSt.Cycles, ideal.Cycles),
			metrics.PctOfIdeal(base.Cycles, ispySt.Cycles, ideal.Cycles))
	}
	fmt.Println("\nI-SPY stays closer to the ideal cache on every unseen input (paper Fig. 16).")
}
