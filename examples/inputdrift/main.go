// Inputdrift: profile-time assumptions vs production reality, in two acts.
//
// Act 1 is the Fig. 16 scenario — profile a service under one load, then
// deploy the optimized binary against inputs whose request mix has drifted
// (rotated popularity ranks, flatter/sharper skews, fully reversed ranks).
// Data-center loads shift diurnally; a profile-guided optimization that only
// helps on the profiled input is useless in production. Conditional
// prefetching makes I-SPY resilient: a prefetch fires only when the run-time
// context says the miss is coming, so stale profile assumptions suppress
// themselves.
//
// Act 2 turns the same question on the traffic shape: a matrix of
// multi-tenant scenarios (internal/traffic) varies the arrival process,
// tenant skew, and diurnal curve around a fixed two-tenant population.
// Each app is still profiled in isolation (the paper's deployment model),
// the injected binaries are merged into one address space, and the
// interleaved production schedule decides what the instruction cache sees.
// The per-SLO-class rows show how much of the win lands on the
// latency-sensitive traffic under each shape.
//
// Run with: go run ./examples/inputdrift [app]
package main

import (
	"fmt"
	"os"

	"ispy/internal/asmdb"
	"ispy/internal/core"
	"ispy/internal/experiments"
	"ispy/internal/isa"
	"ispy/internal/metrics"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/traffic"
	"ispy/internal/workload"
)

func main() {
	app := "mediawiki"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	driftTable(app)
	scenarioMatrix()
}

// driftTable is the single-tenant input-drift act (paper Fig. 16).
func driftTable(app string) {
	w := workload.Preset(app)
	scfg := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)

	// Profile ONLY on the default input.
	prof := profile.Collect(w, workload.DefaultInput(w), scfg)
	adb := asmdb.BuildDefault(prof, core.DefaultOptions())
	ispy := core.BuildISPY(prof, scfg, core.DefaultOptions())

	fmt.Printf("profiled %q on input %q; evaluating on 5 inputs\n\n", app, workload.DefaultInput(w).Name)
	fmt.Printf("%-26s %14s %14s %14s\n", "input", "ideal speedup", "asmdb %ideal", "i-spy %ideal")

	run := func(p *isa.Program, in workload.Input, ideal bool) *sim.Stats {
		c := scfg
		c.Ideal = ideal
		return sim.Run(p, workload.NewExecutor(w, in), c, nil)
	}
	for _, in := range workload.DriftedInputs(w, 5) {
		base := run(w.Prog, in, false)
		ideal := run(w.Prog, in, true)
		adbSt := run(adb.Prog, in, false)
		ispySt := run(ispy.Prog, in, false)
		fmt.Printf("%-26s %13.1f%% %13.1f%% %13.1f%%\n",
			in.Name,
			metrics.SpeedupPct(base.Cycles, ideal.Cycles),
			metrics.PctOfIdeal(base.Cycles, adbSt.Cycles, ideal.Cycles),
			metrics.PctOfIdeal(base.Cycles, ispySt.Cycles, ideal.Cycles))
	}
	fmt.Println("\nI-SPY stays closer to the ideal cache on every unseen input (paper Fig. 16).")
}

// matrix is the scenario sweep: one fixed tenant population under four
// traffic shapes. Specs share a seed so the only variable is the shape.
var matrix = []struct {
	label string
	spec  string
}{
	{"steady poisson", "name=steady;seed=31;requests=128;arrival=poisson;" +
		"tenants=wordpress:slo=interactive,tomcat:slo=batch"},
	{"bursty gamma", "name=bursty;seed=31;requests=128;arrival=gamma:0.4;" +
		"tenants=wordpress:slo=interactive,tomcat:slo=batch"},
	{"diurnal trough/peak", "name=diurnal;seed=31;requests=128;arrival=gamma:0.7;day=0.4,1.6;" +
		"tenants=wordpress:slo=interactive,tomcat:slo=batch"},
	{"zipf-skewed tenants", "name=skewed;seed=31;requests=128;arrival=gamma:0.7;zipf=1.2;" +
		"tenants=wordpress:slo=interactive,tomcat:slo=batch"},
}

// scenarioMatrix is the multi-tenant act: the same two tenants under four
// traffic shapes, reduced budgets so the example stays interactive.
func scenarioMatrix() {
	lab := experiments.NewLab(experiments.Config{
		Apps:          []string{"wordpress", "tomcat"},
		MeasureInstrs: 300_000,
		WarmupInstrs:  100_000,
		Parallel:      true,
	})
	fmt.Printf("\nscenario matrix: wordpress(interactive) + tomcat(batch) under four traffic shapes\n\n")
	fmt.Printf("%-22s %9s %14s %14s\n", "shape", "speedup", "interactive", "batch")
	fmt.Printf("%-22s %9s %14s %14s\n", "", "", "mpki delta", "mpki delta")
	for _, m := range matrix {
		spec, err := traffic.ParseSpec(m.spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inputdrift: %v\n", err)
			os.Exit(1)
		}
		res, err := lab.Scenario(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inputdrift: %v\n", err)
			os.Exit(1)
		}
		speedup := float64(res.Base.Cycles) / float64(res.ISPY.Cycles)
		baseSLO, ispySLO := traffic.SLORows(res.BaseRows), traffic.SLORows(res.ISPYRows)
		delta := func(i int) float64 {
			bm := traffic.MPKI(&baseSLO[i])
			if bm == 0 {
				return 0
			}
			return 100 * (bm - traffic.MPKI(&ispySLO[i])) / bm
		}
		fmt.Printf("%-22s %8.4fx %13.1f%% %13.1f%%\n", m.label, speedup, delta(0), delta(1))
	}
	fmt.Println("\nThe win concentrates on whichever class dominates the interleaving: burstier")
	fmt.Println("arrivals and sharper skew lengthen one tenant's runs, so its working set")
	fmt.Println("holds the cache and the other tenant pays the context-switch misses.")
}
