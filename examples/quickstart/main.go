// Quickstart: the I-SPY usage model (paper Fig. 9) end to end on one
// synthetic application, using the public pipeline:
//
//  1. generate a workload          (workload.Preset)
//  2. profile it online            (profile.Collect — LBR + PEBS analogue)
//  3. run the offline analysis     (core.BuildISPY — sites, contexts,
//     coalescing, injection)
//  4. deploy and measure           (sim.Run on the injected program)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"ispy/internal/core"
	"ispy/internal/isa"
	"ispy/internal/metrics"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/workload"
)

func main() {
	// 1. A wordpress-like request-processing service whose instruction
	// footprint far exceeds the 32 KiB L1 I-cache.
	w := workload.Preset("wordpress")
	fmt.Printf("workload %q: %d KB text, %d blocks, %d request types\n",
		w.Name, w.Prog.TextSize>>10, len(w.Prog.Blocks), w.NumTypes)

	scfg := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)

	// Baseline and ideal-cache bounds.
	run := func(p *isa.Program, ideal bool) *sim.Stats {
		c := scfg
		c.Ideal = ideal
		return sim.Run(p, workload.NewExecutor(w, workload.DefaultInput(w)), c, nil)
	}
	base := run(w.Prog, false)
	ideal := run(w.Prog, true)
	fmt.Printf("baseline:  %.2f MPKI, %.1f%% frontend-bound\n", base.MPKI(), base.FrontendBoundFrac()*100)
	fmt.Printf("ideal:     +%.1f%% speedup available\n", metrics.SpeedupPct(base.Cycles, ideal.Cycles))

	// 2. Online profiling (Fig. 9 step 1).
	prof := profile.Collect(w, workload.DefaultInput(w), scfg)
	fmt.Printf("profile:   %d misses over %d lines, hash density %.2f\n",
		prof.Graph.TotalMisses, len(prof.Graph.Sites), prof.AvgHashDensity)

	// 3. Offline analysis + injection (Fig. 9 steps 2–3).
	build := core.BuildISPY(prof, scfg, core.DefaultOptions())
	kinds := build.Plan.KindCounts()
	fmt.Printf("injection: %d Prefetch, %d Cprefetch, %d Lprefetch, %d CLprefetch (+%.1f%% static)\n",
		kinds[isa.KindPrefetch], kinds[isa.KindCprefetch],
		kinds[isa.KindLprefetch], kinds[isa.KindCLprefetch],
		build.StaticIncrease(w.Prog)*100)

	// 4. Deploy.
	st := run(build.Prog, false)
	fmt.Printf("I-SPY:     +%.1f%% speedup (%.1f%% of ideal), %.2f MPKI (%.1f%% reduction), %.1f%% prefetch accuracy\n",
		metrics.SpeedupPct(base.Cycles, st.Cycles),
		metrics.PctOfIdeal(base.Cycles, st.Cycles, ideal.Cycles),
		st.MPKI(), metrics.Reduction(base.MPKI(), st.MPKI()),
		st.PrefetchAccuracy()*100)
}
