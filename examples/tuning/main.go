// Tuning: sweep I-SPY's three main hardware/analysis knobs on one
// application, mirroring the paper's sensitivity analysis (§VI-B):
//
//   - context size (predecessors per condition, Fig. 17)
//   - coalescing bit-vector width (Fig. 19)
//   - context-hash width (Fig. 21: false positives vs code size)
//
// Useful as a template for retuning I-SPY to a different cache hierarchy.
//
// Run with: go run ./examples/tuning [app]
package main

import (
	"fmt"
	"os"

	"ispy/internal/core"
	"ispy/internal/metrics"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/workload"
)

func main() {
	app := "wordpress"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	w := workload.Preset(app)
	scfg := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)

	base := sim.Run(w.Prog, workload.NewExecutor(w, workload.DefaultInput(w)), scfg, nil)
	idealCfg := scfg
	idealCfg.Ideal = true
	ideal := sim.Run(w.Prog, workload.NewExecutor(w, workload.DefaultInput(w)), idealCfg, nil)

	prof := profile.Collect(w, workload.DefaultInput(w), scfg)
	// The expensive intermediates (site selection + context labeling) are
	// computed once and reused across sweep points.
	prep := core.Prepare(prof, scfg, core.DefaultOptions())

	eval := func(opt core.Options) (*core.Build, *sim.Stats) {
		b := core.BuildFromPrepared(prof, prep, opt)
		c := scfg
		if opt.HashBits != 0 {
			c.HashBits = opt.HashBits
		}
		return b, sim.Run(b.Prog, workload.NewExecutor(w, workload.DefaultInput(w)), c, nil)
	}

	fmt.Printf("tuning %q (ideal headroom: +%.1f%%)\n", app, metrics.SpeedupPct(base.Cycles, ideal.Cycles))

	fmt.Println("\ncontext size (predecessors per condition):")
	for _, k := range []int{1, 2, 4, 8} {
		opt := core.DefaultOptions()
		opt.MaxPreds = k
		_, st := eval(opt)
		fmt.Printf("  %2d preds: %5.1f%% of ideal, FP rate %4.1f%%\n",
			k, metrics.PctOfIdeal(base.Cycles, st.Cycles, ideal.Cycles),
			st.CondFalsePositiveRate()*100)
	}

	fmt.Println("\ncoalescing bit-vector width:")
	for _, bits := range []int{1, 4, 8, 16, 32} {
		opt := core.DefaultOptions()
		opt.CoalesceBits = bits
		b, st := eval(opt)
		_, n := b.Prog.PrefetchBytes()
		fmt.Printf("  %2d bits: %5.1f%% of ideal, %4d injected instructions\n",
			bits, metrics.PctOfIdeal(base.Cycles, st.Cycles, ideal.Cycles), n)
	}

	fmt.Println("\ncontext-hash width:")
	for _, bits := range []int{8, 16, 32, 64} {
		opt := core.DefaultOptions()
		opt.HashBits = bits
		b, st := eval(opt)
		fmt.Printf("  %2d bits: FP rate %5.1f%%, static footprint +%.1f%%\n",
			bits, st.CondFalsePositiveRate()*100, b.StaticIncrease(w.Prog)*100)
	}
}
