// Webserver: the scenario from the paper's introduction — a data-center
// request-processing service suffering frontend stalls — evaluated under
// four instruction-supply strategies:
//
//   - no prefetching (baseline)
//   - a next-line hardware prefetcher (the classic industrial design, §VIII)
//   - AsmDB, the state-of-the-art software prefetcher (Ayers et al.)
//   - I-SPY, conditional prefetching + coalescing
//
// The example prints a metric panel per strategy and a short explanation of
// where each one loses.
//
// Run with: go run ./examples/webserver [app]
package main

import (
	"fmt"
	"os"

	"ispy/internal/asmdb"
	"ispy/internal/core"
	"ispy/internal/isa"
	"ispy/internal/metrics"
	"ispy/internal/profile"
	"ispy/internal/sim"
	"ispy/internal/workload"
)

func main() {
	app := "finagle-http"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	w := workload.Preset(app)
	scfg := sim.Default().WithWorkloadCPI(w.Params.BackendCPI)
	in := workload.DefaultInput(w)

	run := func(p *isa.Program, c sim.Config) *sim.Stats {
		return sim.Run(p, workload.NewExecutor(w, in), c, nil)
	}

	base := run(w.Prog, scfg)
	idealCfg := scfg
	idealCfg.Ideal = true
	ideal := run(w.Prog, idealCfg)

	prof := profile.Collect(w, in, scfg)
	nextline := run(w.Prog, asmdb.NextLineConfig(scfg))
	adb := asmdb.BuildDefault(prof, core.DefaultOptions())
	adbStats := run(adb.Prog, scfg)
	ispy := core.BuildISPY(prof, scfg, core.DefaultOptions())
	ispyStats := run(ispy.Prog, scfg)

	fmt.Printf("service %q — %d KB of code, %d request types, %.1f%% frontend-bound\n\n",
		app, w.Prog.TextSize>>10, w.NumTypes, base.FrontendBoundFrac()*100)
	fmt.Printf("%-12s %9s %9s %11s %10s %9s\n",
		"strategy", "speedup", "% ideal", "L1I MPKI", "accuracy", "dyn cost")
	row := func(name string, st *sim.Stats, acc bool) {
		accs := "-"
		if acc {
			accs = fmt.Sprintf("%.1f%%", st.PrefetchAccuracy()*100)
		}
		fmt.Printf("%-12s %8.1f%% %8.1f%% %11.2f %10s %8.1f%%\n",
			name,
			metrics.SpeedupPct(base.Cycles, st.Cycles),
			metrics.PctOfIdeal(base.Cycles, st.Cycles, ideal.Cycles),
			st.MPKI(), accs, st.DynFootprintIncrease()*100)
	}
	row("baseline", base, false)
	row("next-line", nextline, true)
	row("asmdb", adbStats, true)
	row("i-spy", ispyStats, true)
	row("ideal", ideal, false)

	fmt.Println()
	fmt.Printf("next-line covers only sequential fetch; branchy request code defeats it.\n")
	fmt.Printf("asmdb covers %.0f%% of profiled miss mass but prefetches unconditionally\n",
		float64(adb.Plan.MissesPlanned)/float64(adb.Plan.MissesTotal)*100)
	fmt.Printf("  (fan-out > %.0f%% misses stay uncovered; shared-site prefetches pollute).\n",
		asmdb.DefaultFanoutThreshold*100)
	kc := ispy.Plan.KindCounts()
	fmt.Printf("i-spy covers %.0f%% with %d conditional and %d coalesced instructions,\n",
		float64(ispy.Plan.MissesPlanned)/float64(ispy.Plan.MissesTotal)*100,
		kc[isa.KindCprefetch]+kc[isa.KindCLprefetch],
		kc[isa.KindLprefetch]+kc[isa.KindCLprefetch])
	fmt.Printf("  suppressing %d of %d conditional executions whose context was absent.\n",
		ispyStats.CondSuppressed, ispyStats.CondExecuted)
}
