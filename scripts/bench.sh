#!/bin/sh
# Reproducible perf baseline: run the headline benchmarks, emit a
# machine-readable BENCH_PR<N>.json at the repo root, and gate against the
# newest committed baseline — so every PR leaves a benchmark trajectory
# future PRs can compare against, and a throughput regression fails the
# check gate instead of slipping in. Methodology, schema, and the profiling
# workflow are documented in docs/PERFORMANCE.md.
#
# usage: scripts/bench.sh -pr N [-o FILE] [-benchtime T] [-count N] [-quick] [-no-gate]
#   -pr N         PR number; labels the JSON and names the default output
#                 BENCH_PR<N>.json (required, so no run clobbers an earlier
#                 PR's baseline)
#   -o FILE       output JSON path             (default: BENCH_PR<N>.json)
#   -benchtime T  go test -benchtime argument  (default: 20x)
#   -count N      go test -count argument      (default: 3; benchjson
#                 averages the repetitions, damping machine noise)
#   -quick        smoke mode: one throughput app + the reference kernel,
#                 -benchtime 1x -count 1 (used by the `make benchsmoke`
#                 CI gate)
#   -no-gate      skip the regression comparison against the newest
#                 committed BENCH_PR*.json (escape hatch for noisy machines)
set -eu
cd "$(dirname "$0")/.."

usage() {
    echo "usage: scripts/bench.sh -pr N [-o FILE] [-benchtime T] [-count N] [-quick] [-no-gate]" >&2
    exit 2
}

# needs_value guards against `bench.sh -o` (flag given, operand missing):
# under `set -u` a bare `$2` would die with a cryptic "unbound variable"
# instead of the usage line.
needs_value() {
    if [ "$#" -lt 2 ]; then
        echo "scripts/bench.sh: $1 requires a value" >&2
        usage
    fi
}

pr=""
out=""
benchtime="20x"
count="3"
gate=1
pattern='BenchmarkSimulatorThroughput|BenchmarkSimulatorReference|BenchmarkSimulatorSharded|BenchmarkAnalysisPipeline'
while [ $# -gt 0 ]; do
    case "$1" in
    -pr) needs_value "$@"; pr="$2"; shift 2 ;;
    -o) needs_value "$@"; out="$2"; shift 2 ;;
    -benchtime) needs_value "$@"; benchtime="$2"; shift 2 ;;
    -count) needs_value "$@"; count="$2"; shift 2 ;;
    -quick)
        benchtime="1x"
        count="1"
        pattern='BenchmarkSimulatorThroughput/wordpress$|BenchmarkSimulatorReference|BenchmarkSimulatorSharded'
        shift ;;
    -no-gate) gate=0; shift ;;
    *) usage ;;
    esac
done

case "$pr" in
'') echo "scripts/bench.sh: -pr N is required (the baseline's PR number)" >&2; usage ;;
*[!0-9]*) echo "scripts/bench.sh: -pr expects a PR number, got '$pr'" >&2; usage ;;
esac
[ -n "$out" ] || out="BENCH_PR${pr}.json"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# -run=NONE: benchmarks only. The raw text still streams to the terminal;
# the tee'd copy feeds the JSON converter.
go test -run=NONE -bench "$pattern" -benchmem \
    -benchtime "$benchtime" -count "$count" . | tee "$tmp"
go run ./scripts/benchjson -pr "PR${pr}" -o "$out" <"$tmp"
echo "wrote $out"

# Regression gate: compare the fresh baseline against the newest committed
# BENCH_PR*.json (highest PR number, excluding this run's own output file).
if [ "$gate" -eq 1 ]; then
    prev=$(ls BENCH_PR*.json 2>/dev/null |
        grep -v -F -x "$out" |
        sed 's/^BENCH_PR\([0-9]*\)\.json$/\1 &/' |
        sort -n -r | head -n 1 | cut -d' ' -f2 || true)
    if [ -n "$prev" ]; then
        go run ./scripts/benchjson -gate-old "$prev" -gate-new "$out" -max-loss-pct 10
    else
        echo "scripts/bench.sh: no committed BENCH_PR*.json to gate against; skipping" >&2
    fi
fi
