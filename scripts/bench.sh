#!/bin/sh
# Reproducible perf baseline: run the headline benchmarks and emit a
# machine-readable BENCH_*.json at the repo root, so every PR leaves a
# benchmark trajectory future PRs can compare against. Methodology, schema,
# and the profiling workflow are documented in docs/PERFORMANCE.md.
#
# usage: scripts/bench.sh [-o FILE] [-benchtime T] [-count N] [-quick]
#   -o FILE       output JSON path             (default: BENCH_PR3.json)
#   -benchtime T  go test -benchtime argument  (default: 20x)
#   -count N      go test -count argument      (default: 3; benchjson
#                 averages the repetitions, damping machine noise)
#   -quick        smoke mode: one throughput app + the reference kernel,
#                 -benchtime 1x -count 1 (used by the `make benchsmoke`
#                 CI gate)
set -eu
cd "$(dirname "$0")/.."

out="BENCH_PR3.json"
benchtime="20x"
count="3"
pattern='BenchmarkSimulatorThroughput|BenchmarkSimulatorReference|BenchmarkAnalysisPipeline'
while [ $# -gt 0 ]; do
    case "$1" in
    -o) out="$2"; shift 2 ;;
    -benchtime) benchtime="$2"; shift 2 ;;
    -count) count="$2"; shift 2 ;;
    -quick)
        benchtime="1x"
        count="1"
        pattern='BenchmarkSimulatorThroughput/wordpress$|BenchmarkSimulatorReference'
        shift ;;
    *) echo "usage: scripts/bench.sh [-o FILE] [-benchtime T] [-count N] [-quick]" >&2; exit 2 ;;
    esac
done

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# -run=NONE: benchmarks only. The raw text still streams to the terminal;
# the tee'd copy feeds the JSON converter.
go test -run=NONE -bench "$pattern" -benchmem \
    -benchtime "$benchtime" -count "$count" . | tee "$tmp"
go run ./scripts/benchjson -pr PR3 -o "$out" <"$tmp"
echo "wrote $out"
