#!/bin/sh
# The repository gate: vet, build, race-enabled tests, a short fuzz pass
# over the trace decoders, and a CLI-level fault-injection smoke. `make
# check` runs the same steps; this script exists for environments without
# make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== fuzz smoke (decoders, 5s)"
go test -run=NONE -fuzz=FuzzDecode -fuzztime=5s ./internal/traceio
echo "== fault-injection smoke (must exit 1, not crash)"
set +e
go run ./cmd/ispy -apps tomcat -instrs 120000 \
    -faults 'compute/base/*=panic' run fig1 >/dev/null 2>&1
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "fault-injection smoke: exit code $rc, want 1" >&2
    exit 1
fi
echo "== all checks passed"
