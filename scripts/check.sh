#!/bin/sh
# The repository gate: gofmt, vet, ispy-vet (the repo's determinism &
# invariant analyzer), the injected-regression vet smoke (grafted
# stale-key and impure-response regressions must fail the analyzer),
# build, race-enabled tests, a short fuzz pass over the
# trace decoders, a CLI-level fault-injection smoke, the ispyd chaos soak
# (graceful degradation under injected faults), and the bench-script
# smoke — which both validates the JSON and gates throughput against the
# newest committed BENCH_PR*.json (>10% loss fails; see scripts/bench.sh
# -no-gate for noisy machines). `make check` runs the same steps; this
# script exists for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -l flagged:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "== go vet ./..."
go vet ./...
echo "== ispy-vet -strict ./..."
go run ./cmd/ispy-vet -strict ./...
echo "== ispy-vet -json smoke"
go run ./cmd/ispy-vet -json ./... > /dev/null
echo "== vet smoke (injected keysound/purity regressions must fail the gate)"
go test -run 'TestInjectedRegressions/(keysound|purity)' ./internal/vetting
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== fuzz smoke (decoders, 5s)"
go test -run=NONE -fuzz=FuzzDecode -fuzztime=5s ./internal/traceio
echo "== fault-injection smoke (must exit 1, not crash)"
set +e
go run ./cmd/ispy -apps tomcat -instrs 120000 \
    -faults 'compute/base/*=panic' run fig1 >/dev/null 2>&1
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "fault-injection smoke: exit code $rc, want 1" >&2
    exit 1
fi
echo "== server chaos smoke (ispyd soak must exit 0)"
go run ./cmd/ispyd soak -apps wordpress -workers 2 -requests 3 \
    -instrs 60000 -fault-seed 20260807 >/dev/null 2>&1 || {
    echo "server chaos smoke: soak reported an invariant violation" >&2
    exit 1
}
echo "== scenario smoke (multi-tenant traffic through ispy and ispyd)"
SCENARIO='name=smoke;seed=11;requests=160;arrival=gamma:0.7;day=0.6,1.4;zipf=0.8;tenants=wordpress:slo=interactive,tomcat:slo=batch'
go run ./cmd/ispy -instrs 120000 -scenario "$SCENARIO" >/dev/null 2>&1 || {
    echo "scenario smoke: ispy -scenario failed" >&2
    exit 1
}
go run ./cmd/ispyd soak -apps wordpress -workers 2 -requests 2 \
    -instrs 60000 -fault-seed 20260807 -scenario "$SCENARIO" >/dev/null 2>&1 || {
    echo "scenario smoke: ispyd soak with -scenario failed" >&2
    exit 1
}
echo "== bench-script smoke (JSON schema + perf regression gate)"
ISPY_BENCH_SMOKE=1 go test -run TestBenchScriptEmitsJSON .
echo "== all checks passed"
