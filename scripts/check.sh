#!/bin/sh
# The repository gate: vet, build, race-enabled tests. `make check` runs the
# same steps; this script exists for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== all checks passed"
