// benchjson converts `go test -bench` text output (read from stdin) into
// the machine-readable BENCH_*.json format scripts/bench.sh emits at the
// repo root. See docs/PERFORMANCE.md for the file's schema and how to read
// it.
//
// Usage: go test -bench ... | go run ./scripts/benchjson -pr PR6 -o BENCH_PR6.json
//
// The -pr label is required (scripts/bench.sh derives it from its own
// required -pr N argument), so every baseline lands in its own
// BENCH_PR<N>.json and the per-PR trajectory accumulates instead of being
// clobbered.
//
// A second mode turns the tool into a regression gate:
//
//	go run ./scripts/benchjson -gate-old BENCH_PR3.json -gate-new fresh.json -max-loss-pct 10
//
// compares the wordpress fast-path throughput of two baseline files and
// exits 1 when the new one has lost more than the threshold — the perf
// regression gate scripts/bench.sh wires into `make check`.
//
// Benchmark lines have the shape
//
//	BenchmarkName/sub-8   3   27948047 ns/op   76221482 instrs/s   12 B/op   4 allocs/op
//
// i.e. a name (with -GOMAXPROCS suffix), an iteration count, then
// value/unit pairs. ns/op, B/op and allocs/op get dedicated fields; every
// other unit (custom b.ReportMetric metrics such as instrs/s) lands in the
// metrics map. When both the wordpress fast-path throughput and the
// reference-kernel throughput are present, the derived fastpath_speedup
// ratio is recorded at the top level — that is the number the PR's
// acceptance criterion tracks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted JSON document.
type File struct {
	PR              string      `json:"pr"`
	GoVersion       string      `json:"go_version"`
	GOOS            string      `json:"goos"`
	GOARCH          string      `json:"goarch"`
	CPU             string      `json:"cpu,omitempty"`
	FastpathSpeedup float64     `json:"fastpath_speedup,omitempty"`
	ShardedSpeedup  float64     `json:"sharded_speedup,omitempty"`
	Benchmarks      []Benchmark `json:"benchmarks"`
}

func main() {
	pr := flag.String("pr", "", "PR label recorded in the file (required, e.g. PR6)")
	out := flag.String("o", "", "output file (default stdout)")
	gateOld := flag.String("gate-old", "", "gate mode: committed baseline JSON to compare against")
	gateNew := flag.String("gate-new", "", "gate mode: freshly measured baseline JSON")
	maxLoss := flag.Float64("max-loss-pct", 10, "gate mode: max tolerated throughput loss in percent")
	flag.Parse()

	if *gateOld != "" || *gateNew != "" {
		if *gateOld == "" || *gateNew == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate-old and -gate-new must be given together")
			os.Exit(2)
		}
		os.Exit(gate(*gateOld, *gateNew, *maxLoss))
	}
	if *pr == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -pr is required (e.g. -pr PR6); every baseline gets its own BENCH_PR<N>.json")
		os.Exit(2)
	}

	f := File{
		PR:        *pr,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			f.CPU = strings.TrimSpace(cpu)
			continue
		}
		b, ok := parseBenchLine(line)
		if ok {
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	fast := metric(f.Benchmarks, "SimulatorThroughput/wordpress", "instrs/s")
	ref := metric(f.Benchmarks, "SimulatorReference", "instrs/s")
	if fast > 0 && ref > 0 {
		f.FastpathSpeedup = fast / ref
	}
	sharded := metric(f.Benchmarks, "SimulatorSharded/wordpress", "instrs/s")
	if fast > 0 && sharded > 0 {
		f.ShardedSpeedup = sharded / fast
	}

	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one "Benchmark... N val unit [val unit]..." line;
// ok is false for any line that is not a benchmark result.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, b.NsPerOp > 0
}

// gate compares the wordpress fast-path throughput of two baseline files
// and returns the process exit code: 0 when the fresh number is within
// maxLoss percent of the committed one (or when either file lacks the
// metric — an incomparable pair is not a regression), 1 on a real loss.
func gate(oldPath, newPath string, maxLoss float64) int {
	load := func(path string) (File, bool) {
		var f File
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %v\n", err)
			return f, false
		}
		if err := json.Unmarshal(raw, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s: %v\n", path, err)
			return f, false
		}
		return f, true
	}
	oldF, ok := load(oldPath)
	if !ok {
		return 2
	}
	newF, ok := load(newPath)
	if !ok {
		return 2
	}
	oldFast := metric(oldF.Benchmarks, "SimulatorThroughput/wordpress", "instrs/s")
	newFast := metric(newF.Benchmarks, "SimulatorThroughput/wordpress", "instrs/s")
	if oldFast <= 0 || newFast <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate: wordpress throughput missing (%s: %.0f, %s: %.0f); skipping comparison\n",
			oldPath, oldFast, newPath, newFast)
		return 0
	}
	lossPct := (1 - newFast/oldFast) * 100
	fmt.Fprintf(os.Stderr, "benchjson: gate: wordpress throughput %s %.3g instrs/s → %s %.3g instrs/s (%+.1f%%, limit -%.0f%%)\n",
		oldPath, oldFast, newPath, newFast, -lossPct, maxLoss)
	if lossPct > maxLoss {
		fmt.Fprintf(os.Stderr, "benchjson: gate: FAIL — throughput regressed %.1f%% (> %.0f%%)\n", lossPct, maxLoss)
		return 1
	}
	return 0
}

// metric returns the named custom metric averaged over every benchmark
// whose name contains sub (go test -count N emits one line per repetition;
// averaging them damps machine noise), or 0 when absent.
func metric(bs []Benchmark, sub, unit string) float64 {
	var sum float64
	var n int
	for _, b := range bs {
		if strings.Contains(b.Name, sub) && b.Metrics[unit] > 0 {
			sum += b.Metrics[unit]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
